// Command cedarsim regenerates the kernel-level experiments of the paper:
// Table 1 (rank-64 update memory study), Table 2 (global memory latency
// and interarrival), the §3.2 runtime overheads, and the design ablations
// (network type and queue depth, prefetch block size, scaled-up Cedar).
//
// Usage:
//
//	cedarsim -table 1 [-n 512]
//	cedarsim -table 2 [-small]
//	cedarsim -overheads
//	cedarsim -ablation net|pref|sched [-n 256]
//	cedarsim -scaled [-n 256]
//	cedarsim -membw
//	cedarsim -faults plan.json   # degraded-mode table under a fault plan
//	cedarsim -faults demo        # ... under the built-in dead-bank scenario
//	cedarsim -all
//
// Any run accepts -trace FILE (Chrome trace-event JSON for Perfetto or
// chrome://tracing) and -metrics FILE (metrics snapshot CSV); -json embeds
// the per-run metric snapshot next to each result. -jobs N simulates
// independent experiment points in parallel; output is byte-identical at
// any job count. -faults installs a seed-deterministic fault plan for
// every machine the command builds and adds the degraded-mode table.
// -cpuprofile/-memprofile write pprof profiles of the run; -json output
// leads with a self-describing run-metadata header.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cedar/internal/cliutil"
	"cedar/internal/fleet"
	"cedar/internal/scope"
	"cedar/internal/tables"
)

// emit prints either the formatted table or its JSON representation.
// JSON output leads with the run-metadata header (schema, tool, jobs,
// fault plan), making every artifact self-describing; with a hub
// attached it also carries the experiment's slice of the metrics
// registry alongside the result. The header is the only jobs-dependent
// part — byte comparisons across -jobs values look at result+metrics.
func emit(w io.Writer, asJSON bool, hub *scope.Hub, meta cliutil.Meta, prefix string, v interface{}, format func() string) error {
	if !asJSON {
		_, err := fmt.Fprintln(w, format())
		return err
	}
	var out interface{}
	if hub != nil {
		out = struct {
			Header  cliutil.Meta   `json:"header"`
			Result  interface{}    `json:"result"`
			Metrics []scope.Sample `json:"metrics"`
		}{meta, v, hub.SnapshotUnder(prefix)}
	} else {
		out = struct {
			Header cliutil.Meta `json:"header"`
			Result interface{}  `json:"result"`
		}{meta, v}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit code) passed
// in, so tests can drive invalid invocations without forking.
func run(args []string, stdout, stderr io.Writer) int {
	lg := log.New(stderr, "cedarsim: ", 0)
	fs := flag.NewFlagSet("cedarsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table     = fs.Int("table", 0, "regenerate table 1 or 2")
		n         = fs.Int("n", 256, "matrix order for the rank-64 update (paper: 1K)")
		small     = fs.Bool("small", false, "reduced problem sizes for table 2")
		overheads = fs.Bool("overheads", false, "measure runtime library overheads")
		ablation  = fs.String("ablation", "", "run an ablation: net, pref, or sched")
		scaled    = fs.Bool("scaled", false, "run the scaled-Cedar PPT5 probe")
		membw     = fs.Bool("membw", false, "run the [GJTV91] memory characterization sweep")
		asJSON    = fs.Bool("json", false, "emit results as JSON instead of tables")
		all       = fs.Bool("all", false, "run everything")
		tracePath = fs.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metrics   = fs.String("metrics", "", "write the metrics snapshot as CSV")
		jobs      = fs.Int("jobs", 0, "parallel experiment jobs (0 = GOMAXPROCS); output is identical at any value")
		shards    = fs.Int("shards", 0, "intra-run parallel engine worker bound (1 = sequential); artifacts are byte-identical at any value")
		clusters  = fs.Int("clusters", 0, "simulated machine width in clusters (0 = as-built 4; 16/64 = scale-up presets)")
		faults    = fs.String("faults", "", "JSON fault plan (or \"demo\") injected into every simulated machine")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	plan, err := cliutil.Setup(fs, cliutil.Flags{Jobs: *jobs, Shards: *shards, Clusters: *clusters, Faults: *faults})
	if err != nil {
		lg.Print(err)
		return 2
	}
	prof, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		lg.Print(err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			lg.Print(err)
		}
	}()
	meta := cliutil.NewMeta("cedarsim", plan)

	// The hub exists whenever an artifact or JSON metrics are wanted;
	// otherwise machines are built uninstrumented at zero cost.
	var hub *scope.Hub
	if *tracePath != "" || *metrics != "" || *asJSON {
		hub = scope.NewHub()
		// Surface the shared run cache's counters in -metrics output.
		// (Observed experiments always execute rather than consult the
		// cache, so these stay zero and artifacts stay byte-stable.)
		fleet.PublishMetrics(hub)
	}

	ran := false
	if *all || *overheads {
		ran = true
		ov, err := tables.RunOverheads(hub)
		if err != nil {
			lg.Print(err)
			return 1
		}
		if err := emit(stdout, *asJSON, hub, meta, "overheads", ov, ov.Format); err != nil {
			lg.Print(err)
			return 1
		}
	}
	if *all || *table == 1 {
		ran = true
		t1, err := tables.RunTable1(*n, hub)
		if err != nil {
			lg.Print(err)
			return 1
		}
		if err := emit(stdout, *asJSON, hub, meta, "t1", t1, t1.Format); err != nil {
			lg.Print(err)
			return 1
		}
	}
	if *all || *table == 2 {
		ran = true
		var t2 *tables.Table2Result
		var err error
		if *small {
			t2, err = tables.RunTable2Small(hub)
		} else {
			t2, err = tables.RunTable2(hub)
		}
		if err != nil {
			lg.Print(err)
			return 1
		}
		if err := emit(stdout, *asJSON, hub, meta, "t2", t2, t2.Format); err != nil {
			lg.Print(err)
			return 1
		}
	}
	if *all || *ablation == "net" {
		ran = true
		rows, err := tables.RunNetworkAblation(*n, hub)
		if err != nil {
			lg.Print(err)
			return 1
		}
		if err := emit(stdout, *asJSON, hub, meta, "net", rows, func() string { return tables.FormatNetworkAblation(rows) }); err != nil {
			lg.Print(err)
			return 1
		}
	}
	if *all || *ablation == "sched" {
		ran = true
		rows, err := tables.RunSchedulingAblation(hub)
		if err != nil {
			lg.Print(err)
			return 1
		}
		if err := emit(stdout, *asJSON, hub, meta, "sched", rows, func() string { return tables.FormatScheduling(rows) }); err != nil {
			lg.Print(err)
			return 1
		}
	}
	if *all || *ablation == "pref" {
		ran = true
		rows, err := tables.RunPrefetchBlockAblation(*n, hub)
		if err != nil {
			lg.Print(err)
			return 1
		}
		if err := emit(stdout, *asJSON, hub, meta, "prefblock", rows, func() string { return tables.FormatPrefetchBlock(rows) }); err != nil {
			lg.Print(err)
			return 1
		}
	}
	if *all || *scaled {
		ran = true
		rows, err := tables.RunScaledCedar(*n, hub)
		if err != nil {
			lg.Print(err)
			return 1
		}
		if err := emit(stdout, *asJSON, hub, meta, "scaled", rows, func() string { return tables.FormatScaled(rows) }); err != nil {
			lg.Print(err)
			return 1
		}
	}
	if *all || *membw {
		ran = true
		bw, err := tables.RunMemBW(4096, hub)
		if err != nil {
			lg.Print(err)
			return 1
		}
		if err := emit(stdout, *asJSON, hub, meta, "membw", bw, bw.Format); err != nil {
			lg.Print(err)
			return 1
		}
	}
	if *all || plan != nil {
		ran = true
		rows, err := tables.RunDegraded(*n, plan, hub)
		if err != nil {
			lg.Print(err)
			return 1
		}
		if err := emit(stdout, *asJSON, hub, meta, "degraded", rows, func() string { return tables.FormatDegraded(rows) }); err != nil {
			lg.Print(err)
			return 1
		}
	}
	if !ran {
		fs.Usage()
		return 2
	}
	if hub != nil && !*asJSON {
		fmt.Fprintln(stdout, "cycle attribution")
		fmt.Fprint(stdout, scope.FormatAttribution(hub.Attribution()))
	}
	if err := scope.WriteArtifacts(hub, *tracePath, *metrics); err != nil {
		lg.Print(err)
		return 1
	}
	return 0
}
