// Command cedarsim regenerates the kernel-level experiments of the paper:
// Table 1 (rank-64 update memory study), Table 2 (global memory latency
// and interarrival), the §3.2 runtime overheads, and the design ablations
// (network type and queue depth, prefetch block size, scaled-up Cedar).
//
// Usage:
//
//	cedarsim -table 1 [-n 512]
//	cedarsim -table 2 [-small]
//	cedarsim -overheads
//	cedarsim -ablation net|pref|sched [-n 256]
//	cedarsim -scaled [-n 256]
//	cedarsim -membw
//	cedarsim -all
//
// Any run accepts -trace FILE (Chrome trace-event JSON for Perfetto or
// chrome://tracing) and -metrics FILE (metrics snapshot CSV); -json embeds
// the per-run metric snapshot next to each result. -jobs N simulates
// independent experiment points in parallel; output is byte-identical at
// any job count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"cedar/internal/fleet"
	"cedar/internal/scope"
	"cedar/internal/tables"
)

// emit prints either the formatted table or its JSON representation.
// With a hub attached, the JSON carries the experiment's slice of the
// metrics registry alongside the result.
func emit(asJSON bool, hub *scope.Hub, prefix string, v interface{}, format func() string) {
	if !asJSON {
		fmt.Println(format())
		return
	}
	var out interface{} = v
	if hub != nil {
		out = struct {
			Result  interface{}    `json:"result"`
			Metrics []scope.Sample `json:"metrics"`
		}{v, hub.SnapshotUnder(prefix)}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cedarsim: ")
	var (
		table     = flag.Int("table", 0, "regenerate table 1 or 2")
		n         = flag.Int("n", 256, "matrix order for the rank-64 update (paper: 1K)")
		small     = flag.Bool("small", false, "reduced problem sizes for table 2")
		overheads = flag.Bool("overheads", false, "measure runtime library overheads")
		ablation  = flag.String("ablation", "", "run an ablation: net, pref, or sched")
		scaled    = flag.Bool("scaled", false, "run the scaled-Cedar PPT5 probe")
		membw     = flag.Bool("membw", false, "run the [GJTV91] memory characterization sweep")
		asJSON    = flag.Bool("json", false, "emit results as JSON instead of tables")
		all       = flag.Bool("all", false, "run everything")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metrics   = flag.String("metrics", "", "write the metrics snapshot as CSV")
		jobs      = flag.Int("jobs", 0, "parallel experiment jobs (0 = GOMAXPROCS); output is identical at any value")
	)
	flag.Parse()
	fleet.SetJobs(*jobs)

	// The hub exists whenever an artifact or JSON metrics are wanted;
	// otherwise machines are built uninstrumented at zero cost.
	var hub *scope.Hub
	if *tracePath != "" || *metrics != "" || *asJSON {
		hub = scope.NewHub()
	}

	ran := false
	if *all || *overheads {
		ran = true
		ov, err := tables.RunOverheads(hub)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, hub, "overheads", ov, ov.Format)
	}
	if *all || *table == 1 {
		ran = true
		t1, err := tables.RunTable1(*n, hub)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, hub, "t1", t1, t1.Format)
	}
	if *all || *table == 2 {
		ran = true
		var t2 *tables.Table2Result
		var err error
		if *small {
			t2, err = tables.RunTable2Small(hub)
		} else {
			t2, err = tables.RunTable2(hub)
		}
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, hub, "t2", t2, t2.Format)
	}
	if *all || *ablation == "net" {
		ran = true
		rows, err := tables.RunNetworkAblation(*n, hub)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, hub, "net", rows, func() string { return tables.FormatNetworkAblation(rows) })
	}
	if *all || *ablation == "sched" {
		ran = true
		rows, err := tables.RunSchedulingAblation(hub)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, hub, "sched", rows, func() string { return tables.FormatScheduling(rows) })
	}
	if *all || *ablation == "pref" {
		ran = true
		rows, err := tables.RunPrefetchBlockAblation(*n, hub)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, hub, "prefblock", rows, func() string { return tables.FormatPrefetchBlock(rows) })
	}
	if *all || *scaled {
		ran = true
		rows, err := tables.RunScaledCedar(*n, hub)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, hub, "scaled", rows, func() string { return tables.FormatScaled(rows) })
	}
	if *all || *membw {
		ran = true
		bw, err := tables.RunMemBW(4096, hub)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, hub, "membw", bw, bw.Format)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if hub != nil && !*asJSON {
		fmt.Println("cycle attribution")
		fmt.Print(scope.FormatAttribution(hub.Attribution()))
	}
	if err := scope.WriteArtifacts(hub, *tracePath, *metrics); err != nil {
		log.Fatal(err)
	}
}
