// Command cedarsim regenerates the kernel-level experiments of the paper:
// Table 1 (rank-64 update memory study), Table 2 (global memory latency
// and interarrival), the §3.2 runtime overheads, and the design ablations
// (network type and queue depth, prefetch block size, scaled-up Cedar).
//
// Usage:
//
//	cedarsim -table 1 [-n 512]
//	cedarsim -table 2 [-small]
//	cedarsim -overheads
//	cedarsim -ablation net|pref|sched [-n 256]
//	cedarsim -scaled [-n 256]
//	cedarsim -membw
//	cedarsim -all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"cedar/internal/tables"
)

// emit prints either the formatted table or its JSON representation.
func emit(asJSON bool, v interface{}, format func() string) {
	if !asJSON {
		fmt.Println(format())
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cedarsim: ")
	var (
		table     = flag.Int("table", 0, "regenerate table 1 or 2")
		n         = flag.Int("n", 256, "matrix order for the rank-64 update (paper: 1K)")
		small     = flag.Bool("small", false, "reduced problem sizes for table 2")
		overheads = flag.Bool("overheads", false, "measure runtime library overheads")
		ablation  = flag.String("ablation", "", "run an ablation: net, pref, or sched")
		scaled    = flag.Bool("scaled", false, "run the scaled-Cedar PPT5 probe")
		membw     = flag.Bool("membw", false, "run the [GJTV91] memory characterization sweep")
		asJSON    = flag.Bool("json", false, "emit results as JSON instead of tables")
		all       = flag.Bool("all", false, "run everything")
	)
	flag.Parse()

	ran := false
	if *all || *overheads {
		ran = true
		ov, err := tables.RunOverheads()
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, ov, ov.Format)
	}
	if *all || *table == 1 {
		ran = true
		t1, err := tables.RunTable1(*n)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, t1, t1.Format)
	}
	if *all || *table == 2 {
		ran = true
		var t2 *tables.Table2Result
		var err error
		if *small {
			t2, err = tables.RunTable2Small()
		} else {
			t2, err = tables.RunTable2()
		}
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, t2, t2.Format)
	}
	if *all || *ablation == "net" {
		ran = true
		rows, err := tables.RunNetworkAblation(*n)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, rows, func() string { return tables.FormatNetworkAblation(rows) })
	}
	if *all || *ablation == "sched" {
		ran = true
		rows, err := tables.RunSchedulingAblation()
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, rows, func() string { return tables.FormatScheduling(rows) })
	}
	if *all || *ablation == "pref" {
		ran = true
		rows, err := tables.RunPrefetchBlockAblation(*n)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, rows, func() string { return tables.FormatPrefetchBlock(rows) })
	}
	if *all || *scaled {
		ran = true
		rows, err := tables.RunScaledCedar(*n)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, rows, func() string { return tables.FormatScaled(rows) })
	}
	if *all || *membw {
		ran = true
		bw, err := tables.RunMemBW(4096)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, bw, bw.Format)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
