// Command cedarserve is the persistent experiment-serving daemon: an
// HTTP/JSON front end over the simulator. Clients POST one experiment
// point — machine spec × workload spec × optional fault plan — to
// /v1/run and receive its deterministic outcome artifact; identical
// in-flight submissions coalesce onto one simulation, repeats are served
// byte-identical bytes from the response cache, and a -store directory
// makes that cache durable across daemon restarts.
//
// Usage:
//
//	cedarserve                                  # serve on localhost:8347, memory cache only
//	cedarserve -addr :9000 -store /var/cedar    # durable store, all interfaces
//	cedarserve -store d -store-max-mb 256       # bound the store to 256 MiB (LRU)
//	cedarserve -jobs 4 -shards 2                # at most 4 concurrent simulations, 2 engine workers each
//
// Submit a point with e.g.:
//
//	curl -d '{"workload":{"kind":"trimat","n":64}}' localhost:8347/v1/run
//
// GET /v1/stats reports request/cache counters; GET /healthz is a
// liveness probe.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"

	"cedar/internal/cliutil"
	"cedar/internal/serve"
	"cedar/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit code) passed
// in: exit 2 for a bad invocation, 1 for a runtime failure.
func run(args []string, stdout, stderr io.Writer) int {
	handler, addr, code := setup(args, stderr)
	if code != 0 {
		return code
	}
	lg := log.New(stderr, "cedarserve: ", 0)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		lg.Print(err)
		return 1
	}
	fmt.Fprintf(stdout, "cedarserve: serving on http://%s\n", ln.Addr())
	if err := (&http.Server{Handler: handler}).Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		lg.Print(err)
		return 1
	}
	return 0
}

// setup parses and validates the flags and builds the daemon's handler,
// without binding a socket — tests drive the returned handler directly.
// A non-zero code means "exit with it".
func setup(args []string, stderr io.Writer) (http.Handler, string, int) {
	lg := log.New(stderr, "cedarserve: ", 0)
	fs := flag.NewFlagSet("cedarserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "localhost:8347", "listen address (host:port)")
		storeDir = fs.String("store", "", "durable response store directory (empty: in-memory cache only)")
		storeMax = fs.Int("store-max-mb", 1024, "store size budget in MiB before LRU eviction (0 = unbounded)")
		jobs     = fs.Int("jobs", 0, "max concurrently running simulations (0 = GOMAXPROCS)")
		shards   = fs.Int("shards", 0, "intra-run engine worker bound per simulation (0/1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, "", 2
	}
	if fs.NArg() > 0 {
		lg.Printf("unexpected arguments %v", fs.Args())
		return nil, "", 2
	}
	if *addr == "" {
		lg.Print("-addr must not be empty")
		return nil, "", 2
	}
	if *storeMax < 0 {
		lg.Printf("-store-max-mb must be non-negative, got %d", *storeMax)
		return nil, "", 2
	}
	if *storeDir == "" {
		explicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "store-max-mb" {
				explicit = true
			}
		})
		if explicit {
			lg.Print("-store-max-mb is meaningless without -store")
			return nil, "", 2
		}
	}
	// Faults arrive per request, so the daemon itself always starts with
	// a clean process-wide plan; Setup also validates the worker flags.
	if _, err := cliutil.Setup(fs, cliutil.Flags{Jobs: *jobs, Shards: *shards}); err != nil {
		lg.Print(err)
		return nil, "", 2
	}

	cfg := serve.Config{Jobs: *jobs}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, int64(*storeMax)<<20)
		if err != nil {
			lg.Print(err)
			return nil, "", 2
		}
		cfg.Store = st
	}
	return serve.New(cfg).Handler(), *addr, 0
}
