package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBadInvocationsExit2 pins the flag-validation contract: every bad
// invocation is exit 2 with a diagnostic on stderr, before any socket is
// bound.
func TestBadInvocationsExit2(t *testing.T) {
	regular := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(regular, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional args", []string{"serve"}, "unexpected arguments"},
		{"empty addr", []string{"-addr", ""}, "-addr must not be empty"},
		{"negative jobs", []string{"-jobs", "-3"}, "-jobs must be at least 1"},
		{"zero shards", []string{"-shards", "0"}, "-shards must be at least 1"},
		{"negative store budget", []string{"-store", t.TempDir(), "-store-max-mb", "-1"}, "non-negative"},
		{"budget without store", []string{"-store-max-mb", "64"}, "without -store"},
		{"store at a regular file", []string{"-store", regular}, regular},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			h, _, code := setup(tc.args, &stderr)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr: %s", code, stderr.String())
			}
			if h != nil {
				t.Error("bad invocation still produced a handler")
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

// TestSetupServesAndPersists drives the daemon handler end to end: a
// fresh run, a byte-identical cache hit, and — after a simulated restart
// over the same store directory — a byte-identical disk hit.
func TestSetupServesAndPersists(t *testing.T) {
	dir := t.TempDir()
	req := `{"workload":{"name":"w","kind":"trimat","n":16}}`

	post := func(t *testing.T, h http.Handler) (string, []byte) {
		t.Helper()
		ts := httptest.NewServer(h)
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Cedar-Source"), body
	}

	var stderr bytes.Buffer
	h, addr, code := setup([]string{"-store", dir, "-jobs", "2"}, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if addr != "localhost:8347" {
		t.Errorf("default addr = %q", addr)
	}
	source, fresh := post(t, h)
	if source != "run" {
		t.Fatalf("first submission source = %q, want run", source)
	}
	source, again := post(t, h)
	if source != "cache" || !bytes.Equal(fresh, again) {
		t.Fatalf("repeat: source=%q equal=%v", source, bytes.Equal(fresh, again))
	}

	h2, _, code := setup([]string{"-store", dir}, &stderr)
	if code != 0 {
		t.Fatalf("restart exit %d: %s", code, stderr.String())
	}
	source, restarted := post(t, h2)
	if source != "cache" || !bytes.Equal(fresh, restarted) {
		t.Fatalf("restart: source=%q equal=%v — the store did not persist", source, bytes.Equal(fresh, restarted))
	}
}
