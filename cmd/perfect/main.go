// Command perfect runs the Perfect Benchmarks® proxy suite on the
// simulated Cedar and prints Tables 3 and 4: execution time, MFLOPS and
// speed improvement for the KAP-compiled and automatable versions (with
// the no-Cedar-sync and no-prefetch ablations), and the hand-optimized
// results.
//
// Usage:
//
//	perfect              # full 13-code suite (several minutes)
//	perfect -codes ARC2D,QCD,SPICE
//	perfect -q           # suppress per-run progress
//	perfect -trace t.json -metrics m.csv   # observability artifacts
//	perfect -jobs 8      # parallel code/variant runs, identical output
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"cedar/internal/fleet"
	"cedar/internal/params"
	"cedar/internal/perfect"
	"cedar/internal/scope"
	"cedar/internal/tables"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfect: ")
	var (
		codesFlag = flag.String("codes", "", "comma-separated subset of codes (default: all 13)")
		quiet     = flag.Bool("q", false, "suppress per-run progress lines")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metrics   = flag.String("metrics", "", "write the metrics snapshot as CSV")
		jobs      = flag.Int("jobs", 0, "parallel experiment jobs (0 = GOMAXPROCS); output is identical at any value")
	)
	flag.Parse()
	fleet.SetJobs(*jobs)

	var hub *scope.Hub
	if *tracePath != "" || *metrics != "" {
		hub = scope.NewHub()
	}

	codes := perfect.All()
	if *codesFlag != "" {
		want := map[string]bool{}
		for _, c := range strings.Split(*codesFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(c))] = true
		}
		var sel []perfect.Profile
		for _, p := range codes {
			if want[p.Name] {
				sel = append(sel, p)
			}
		}
		if len(sel) == 0 {
			log.Fatalf("no codes match %q", *codesFlag)
		}
		codes = sel
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	suite, err := tables.RunSuite(params.Default(), codes, progress, hub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 3: Cedar execution time, MFLOPS and speed improvement for the Perfect Benchmarks")
	fmt.Println(tables.BuildTable3(suite).Format())
	fmt.Println("Table 4: execution times for manually altered Perfect codes")
	fmt.Println(tables.FormatTable4(tables.BuildTable4(suite)))
	if hub != nil {
		fmt.Println("cycle attribution")
		fmt.Print(scope.FormatAttribution(hub.Attribution()))
	}
	if err := scope.WriteArtifacts(hub, *tracePath, *metrics); err != nil {
		log.Fatal(err)
	}
}
