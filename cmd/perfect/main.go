// Command perfect runs the Perfect Benchmarks® proxy suite on the
// simulated Cedar and prints Tables 3 and 4: execution time, MFLOPS and
// speed improvement for the KAP-compiled and automatable versions (with
// the no-Cedar-sync and no-prefetch ablations), and the hand-optimized
// results.
//
// Usage:
//
//	perfect              # full 13-code suite (several minutes)
//	perfect -codes ARC2D,QCD,SPICE
//	perfect -q           # suppress per-run progress
//	perfect -trace t.json -metrics m.csv   # observability artifacts
//	perfect -jobs 8      # parallel code/variant runs, identical output
//	perfect -faults plan.json   # every machine runs under the fault plan
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"cedar/internal/cliutil"
	"cedar/internal/fleet"
	"cedar/internal/params"
	"cedar/internal/perfect"
	"cedar/internal/scope"
	"cedar/internal/tables"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit code) passed
// in, so tests can drive invalid invocations without forking.
func run(args []string, stdout, stderr io.Writer) int {
	lg := log.New(stderr, "perfect: ", 0)
	fs := flag.NewFlagSet("perfect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		codesFlag = fs.String("codes", "", "comma-separated subset of codes (default: all 13)")
		quiet     = fs.Bool("q", false, "suppress per-run progress lines")
		tracePath = fs.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metrics   = fs.String("metrics", "", "write the metrics snapshot as CSV")
		jobs      = fs.Int("jobs", 0, "parallel experiment jobs (0 = GOMAXPROCS); output is identical at any value")
		shards    = fs.Int("shards", 0, "intra-run parallel engine worker bound (1 = sequential); artifacts are byte-identical at any value")
		faults    = fs.String("faults", "", "JSON fault plan (or \"demo\") injected into every simulated machine")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := cliutil.Setup(fs, cliutil.Flags{Jobs: *jobs, Shards: *shards, Faults: *faults}); err != nil {
		lg.Print(err)
		return 2
	}
	prof, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		lg.Print(err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			lg.Print(err)
		}
	}()

	var hub *scope.Hub
	if *tracePath != "" || *metrics != "" {
		hub = scope.NewHub()
		fleet.PublishMetrics(hub)
	}

	codes := perfect.All()
	if *codesFlag != "" {
		want := map[string]bool{}
		for _, c := range strings.Split(*codesFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(c))] = true
		}
		var sel []perfect.Profile
		for _, p := range codes {
			if want[p.Name] {
				sel = append(sel, p)
			}
		}
		if len(sel) == 0 {
			lg.Printf("no codes match %q", *codesFlag)
			return 2
		}
		codes = sel
	}

	var progress io.Writer = stderr
	if *quiet {
		progress = nil
	}
	suite, err := tables.RunSuite(params.Default(), codes, progress, hub)
	if err != nil {
		lg.Print(err)
		return 1
	}
	fmt.Fprintln(stdout, "Table 3: Cedar execution time, MFLOPS and speed improvement for the Perfect Benchmarks")
	fmt.Fprintln(stdout, tables.BuildTable3(suite).Format())
	fmt.Fprintln(stdout, "Table 4: execution times for manually altered Perfect codes")
	fmt.Fprintln(stdout, tables.FormatTable4(tables.BuildTable4(suite)))
	if hub != nil {
		fmt.Fprintln(stdout, "cycle attribution")
		fmt.Fprint(stdout, scope.FormatAttribution(hub.Attribution()))
	}
	if err := scope.WriteArtifacts(hub, *tracePath, *metrics); err != nil {
		lg.Print(err)
		return 1
	}
	return 0
}
