// Command judge applies the paper's §4.3 methodology — the Practical
// Parallelism Tests — to the simulated Cedar and the comparator machines:
// Table 5 (instability of the Perfect ensembles on Cedar, Cray-1 and
// YMP/8), Table 6 (restructuring efficiency bands), Figure 3 (the
// YMP-vs-Cedar efficiency scatter for hand-optimized codes) and the PPT4
// scalability study (CG on Cedar against banded matvec on the CM-5).
//
// Usage:
//
//	judge                 # tables 5 and 6 plus figure 3 (runs the suite)
//	judge -ppt4 [-full]   # the scalability study only
//	judge -all
//	judge -trace t.json -metrics m.csv   # observability artifacts
//	judge -jobs 8         # parallel suite/sweep points, identical output
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cedar/internal/fleet"
	"cedar/internal/params"
	"cedar/internal/scope"
	"cedar/internal/tables"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("judge: ")
	var (
		ppt4Only  = flag.Bool("ppt4", false, "run only the PPT4 scalability study")
		full      = flag.Bool("full", false, "use the paper's largest problem sizes")
		all       = flag.Bool("all", false, "run everything")
		quiet     = flag.Bool("q", false, "suppress per-run progress lines")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metrics   = flag.String("metrics", "", "write the metrics snapshot as CSV")
		jobs      = flag.Int("jobs", 0, "parallel experiment jobs (0 = GOMAXPROCS); output is identical at any value")
	)
	flag.Parse()
	fleet.SetJobs(*jobs)

	var hub *scope.Hub
	if *tracePath != "" || *metrics != "" {
		hub = scope.NewHub()
	}

	if !*ppt4Only || *all {
		progress := os.Stderr
		if *quiet {
			progress = nil
		}
		suite, err := tables.RunSuite(params.Default(), nil, progress, hub)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Table 5: Instability for Perfect codes")
		fmt.Println(tables.BuildTable5(suite).Format())
		fmt.Println("Table 6: Restructuring Efficiency")
		fmt.Println(tables.BuildTable6(suite).Format())
		fmt.Println("Figure 3: Cray YMP/8 vs Cedar Efficiency")
		fmt.Println(tables.BuildFigure3(suite).Format())
	}
	if *ppt4Only || *all {
		res, err := tables.RunPPT4(*full, hub)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("PPT4: code and architecture scalability")
		fmt.Println(res.Format())
	}
	if hub != nil {
		fmt.Println("cycle attribution")
		fmt.Print(scope.FormatAttribution(hub.Attribution()))
	}
	if err := scope.WriteArtifacts(hub, *tracePath, *metrics); err != nil {
		log.Fatal(err)
	}
}
