// Command judge applies the paper's §4.3 methodology — the Practical
// Parallelism Tests — to the simulated Cedar and the comparator machines:
// Table 5 (instability of the Perfect ensembles on Cedar, Cray-1 and
// YMP/8), Table 6 (restructuring efficiency bands), Figure 3 (the
// YMP-vs-Cedar efficiency scatter for hand-optimized codes) and the PPT4
// scalability study (CG on Cedar against banded matvec on the CM-5).
//
// Usage:
//
//	judge                 # tables 5 and 6 plus figure 3 (runs the suite)
//	judge -ppt4 [-full]   # the scalability study only
//	judge -all
//	judge -trace t.json -metrics m.csv   # observability artifacts
//	judge -jobs 8         # parallel suite/sweep points, identical output
//	judge -faults plan.json   # every machine runs under the fault plan
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cedar/internal/cliutil"
	"cedar/internal/fleet"
	"cedar/internal/params"
	"cedar/internal/scope"
	"cedar/internal/tables"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit code) passed
// in, so tests can drive invalid invocations without forking.
func run(args []string, stdout, stderr io.Writer) int {
	lg := log.New(stderr, "judge: ", 0)
	fs := flag.NewFlagSet("judge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ppt4Only  = fs.Bool("ppt4", false, "run only the PPT4 scalability study")
		full      = fs.Bool("full", false, "use the paper's largest problem sizes")
		all       = fs.Bool("all", false, "run everything")
		quiet     = fs.Bool("q", false, "suppress per-run progress lines")
		tracePath = fs.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metrics   = fs.String("metrics", "", "write the metrics snapshot as CSV")
		jobs      = fs.Int("jobs", 0, "parallel experiment jobs (0 = GOMAXPROCS); output is identical at any value")
		shards    = fs.Int("shards", 0, "intra-run parallel engine worker bound (1 = sequential); artifacts are byte-identical at any value")
		faults    = fs.String("faults", "", "JSON fault plan (or \"demo\") injected into every simulated machine")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := cliutil.Setup(fs, cliutil.Flags{Jobs: *jobs, Shards: *shards, Faults: *faults}); err != nil {
		lg.Print(err)
		return 2
	}
	prof, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		lg.Print(err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			lg.Print(err)
		}
	}()

	var hub *scope.Hub
	if *tracePath != "" || *metrics != "" {
		hub = scope.NewHub()
		fleet.PublishMetrics(hub)
	}

	if !*ppt4Only || *all {
		var progress io.Writer = stderr
		if *quiet {
			progress = nil
		}
		suite, err := tables.RunSuite(params.Default(), nil, progress, hub)
		if err != nil {
			lg.Print(err)
			return 1
		}
		fmt.Fprintln(stdout, "Table 5: Instability for Perfect codes")
		fmt.Fprintln(stdout, tables.BuildTable5(suite).Format())
		fmt.Fprintln(stdout, "Table 6: Restructuring Efficiency")
		fmt.Fprintln(stdout, tables.BuildTable6(suite).Format())
		fmt.Fprintln(stdout, "Figure 3: Cray YMP/8 vs Cedar Efficiency")
		fmt.Fprintln(stdout, tables.BuildFigure3(suite).Format())
	}
	if *ppt4Only || *all {
		res, err := tables.RunPPT4(*full, hub)
		if err != nil {
			lg.Print(err)
			return 1
		}
		fmt.Fprintln(stdout, "PPT4: code and architecture scalability")
		fmt.Fprintln(stdout, res.Format())
	}
	if hub != nil {
		fmt.Fprintln(stdout, "cycle attribution")
		fmt.Fprint(stdout, scope.FormatAttribution(hub.Attribution()))
	}
	if err := scope.WriteArtifacts(hub, *tracePath, *metrics); err != nil {
		lg.Print(err)
		return 1
	}
	return 0
}
