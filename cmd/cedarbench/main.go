// Command cedarbench runs declarative performance campaigns and diffs
// their artifacts — the perf-trajectory tool scripts/check.sh and CI
// drive on every PR.
//
// Usage:
//
//	cedarbench run                       # built-in smoke campaign -> BENCH_smoke.json
//	cedarbench run -config c.json -out artifacts/BENCH_area.json
//	cedarbench run -jobs 8               # override the campaign's jobs list
//	cedarbench run -cpuprofile cpu.pb.gz # attribute a flagged regression
//	cedarbench diff old.json new.json -threshold 5% -alloc-threshold 30%
//
// `run` executes every (machine × workload × fault) point of the
// campaign through the fleet pool once per declared jobs value and
// writes a BENCH_<area>.json artifact; the run fails if the
// deterministic section is not byte-identical across passes. `diff`
// compares two artifacts and exits 1 when simcycles or allocations
// regressed past the thresholds — CI's regression gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	cedar "cedar"

	"cedar/internal/bench"
	"cedar/internal/cliutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit code) passed
// in, so tests can drive invalid invocations without forking.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "cedarbench: usage: cedarbench run|diff [flags]")
		return 2
	}
	switch args[0] {
	case "run":
		return runCampaign(args[1:], stdout, stderr)
	case "diff", "-diff":
		return runDiff(args[1:], stdout, stderr)
	}
	fmt.Fprintf(stderr, "cedarbench: unknown mode %q (want run or diff)\n", args[0])
	return 2
}

func runCampaign(args []string, stdout, stderr io.Writer) int {
	lg := log.New(stderr, "cedarbench: ", 0)
	fs := flag.NewFlagSet("cedarbench run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		config   = fs.String("config", "", "campaign config JSON (default: the built-in smoke campaign)")
		out      = fs.String("out", "", "artifact path (default BENCH_<area>.json in the current directory)")
		jobs     = fs.Int("jobs", 0, "override the campaign's jobs list with one worker count")
		shards   = fs.Int("shards", 0, "override the campaign's shards list with one intra-run worker bound")
		clusters = fs.Int("clusters", 0, "simulated machine width for default-machine points (0 = as built; 16/64 = scale-up presets)")
		quiet    = fs.Bool("q", false, "suppress progress lines")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file")
		stepped  = fs.Bool("stepped", false, "pin the pure per-cycle stepped engine (disable the event wheel); the deterministic section must not change — compare wall times to measure the wheel's win")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Campaigns declare their own fault plans per matrix axis; Setup here
	// only validates the worker flags and clears any leftover process-wide
	// plan so a campaign's healthy points really are healthy.
	if _, err := cliutil.Setup(fs, cliutil.Flags{Jobs: *jobs, Shards: *shards, Clusters: *clusters}); err != nil {
		lg.Print(err)
		return 2
	}
	if *stepped {
		cedar.SetSteppedEngine(true)
	}
	prof, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		lg.Print(err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			lg.Print(err)
		}
	}()

	c := bench.Smoke()
	if *config != "" {
		if c, err = bench.Load(*config); err != nil {
			lg.Print(err)
			return 2
		}
	}
	opt := bench.RunOptions{Jobs: *jobs, Shards: *shards, Now: time.Now, Progress: stderr}
	if *quiet {
		opt.Progress = nil
	}
	art, err := bench.Run(c, opt)
	if err != nil {
		lg.Print(err)
		return 1
	}
	path := *out
	if path == "" {
		path = "BENCH_" + c.Area + ".json"
	}
	if err := art.Write(path); err != nil {
		lg.Print(err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: %d points × jobs %v\n", path, art.Header.Points, art.Header.Jobs)
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	lg := log.New(stderr, "cedarbench: ", 0)
	fs := flag.NewFlagSet("cedarbench diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		thr      = fs.String("threshold", "5%", "simcycle regression threshold (\"5%\" or \"0.05\")")
		allocThr = fs.String("alloc-threshold", "30%", "malloc regression threshold")
	)
	// Flags may follow the two artifact paths; parse, then re-parse any
	// remainder so both orders work.
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths := fs.Args()
	if len(paths) > 2 {
		rest := paths[2:]
		paths = paths[:2]
		if err := fs.Parse(rest); err != nil {
			return 2
		}
	}
	if len(paths) != 2 {
		fmt.Fprintln(stderr, "cedarbench: usage: cedarbench diff old.json new.json [-threshold 5%] [-alloc-threshold 30%]")
		return 2
	}
	var opt bench.DiffOptions
	var err error
	if opt.CycleThreshold, err = parseThreshold(*thr); err != nil {
		lg.Printf("-threshold: %v", err)
		return 2
	}
	if opt.AllocThreshold, err = parseThreshold(*allocThr); err != nil {
		lg.Printf("-alloc-threshold: %v", err)
		return 2
	}
	old, err := bench.ReadArtifact(paths[0])
	if err != nil {
		lg.Print(err)
		return 2
	}
	cur, err := bench.ReadArtifact(paths[1])
	if err != nil {
		lg.Print(err)
		return 2
	}
	report, err := bench.Diff(old, cur, opt)
	if err != nil {
		lg.Print(err)
		return 2
	}
	fmt.Fprint(stdout, report.Format())
	if report.HasRegressions() {
		return 1
	}
	return 0
}

// parseThreshold accepts "5%" (percent) or "0.05" (fraction).
func parseThreshold(s string) (float64, error) {
	s = strings.TrimSpace(s)
	percent := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad threshold %q", s)
	}
	if percent {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("threshold %q is negative", s)
	}
	return v, nil
}
