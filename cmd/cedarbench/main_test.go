package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cedar/internal/bench"
)

// miniConfig is a one-point campaign small enough for CLI tests.
const miniConfig = `{
  "area": "mini",
  "machines": [{"name": "cedar"}],
  "workloads": [{"name": "vl", "kind": "vectorload", "n": 256}],
  "jobs": [1, 2]
}`

// write puts content in dir/name and returns the path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunModeProducesArtifact(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "c.json", miniConfig)
	out := filepath.Join(dir, "BENCH_mini.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-config", cfg, "-out", out, "-q"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	art, err := bench.ReadArtifact(out)
	if err != nil {
		t.Fatal(err)
	}
	if art.Header.Area != "mini" || len(art.Deterministic.Points) != 1 || len(art.Measured.Runs) != 2 {
		t.Fatalf("unexpected artifact: %+v", art.Header)
	}
	if art.Measured.Runs[0].WallNS == 0 {
		t.Error("CLI runs should record wall time")
	}
	if len(art.Measured.Points) != 1 {
		t.Error("CLI runs should record per-point wall times")
	}
}

func TestRunModeWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "c.json", miniConfig)
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var stdout, stderr bytes.Buffer
	code := run([]string{"run", "-config", cfg, "-out", filepath.Join(dir, "a.json"),
		"-q", "-jobs", "1", "-cpuprofile", cpu, "-memprofile", mem}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	cfg := write(t, dir, "c.json", miniConfig)
	badCfg := write(t, dir, "bad.json", `{"area":"x"}`)

	// Build one good artifact, then a mutated copy with a 10% simcycle
	// regression and a plain copy for the clean diff.
	base := filepath.Join(dir, "base.json")
	var out, errb bytes.Buffer
	if code := run([]string{"run", "-config", cfg, "-out", base, "-q", "-jobs", "1"}, &out, &errb); code != 0 {
		t.Fatalf("setup run failed: %s", errb.String())
	}
	art, err := bench.ReadArtifact(base)
	if err != nil {
		t.Fatal(err)
	}
	art.Deterministic.Points[0].SimCycles = art.Deterministic.Points[0].SimCycles * 11 / 10
	worse := filepath.Join(dir, "worse.json")
	if err := art.Write(worse); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no mode", nil, 2},
		{"unknown mode", []string{"frobnicate"}, 2},
		{"run bad flag", []string{"run", "-no-such-flag"}, 2},
		{"run bad jobs", []string{"run", "-jobs", "-3"}, 2},
		{"run missing config", []string{"run", "-config", filepath.Join(dir, "nope.json")}, 2},
		{"run invalid config", []string{"run", "-config", badCfg}, 2},
		{"diff missing args", []string{"diff", base}, 2},
		{"diff missing file", []string{"diff", base, filepath.Join(dir, "nope.json")}, 2},
		{"diff bad threshold", []string{"diff", base, base, "-threshold", "lots"}, 2},
		{"diff clean", []string{"diff", base, base}, 0},
		{"diff regression", []string{"diff", base, worse}, 1},
		{"diff regression flags first", []string{"diff", "-threshold", "5%", base, worse}, 1},
		{"diff wide threshold absorbs", []string{"diff", base, worse, "-threshold", "20%"}, 0},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if got := run(tc.args, &stdout, &stderr); got != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, got, tc.want, stderr.String())
		}
	}

	// The regression diff names the offending point.
	var stdout, stderr bytes.Buffer
	run([]string{"diff", base, worse}, &stdout, &stderr)
	if !strings.Contains(stdout.String(), "REGRESSION") || !strings.Contains(stdout.String(), "simcycles") {
		t.Errorf("regression output: %q", stdout.String())
	}
}

func TestParseThreshold(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"5%", 0.05, true},
		{"0.05", 0.05, true},
		{" 30% ", 0.30, true},
		{"0", 0, true},
		{"-5%", 0, false},
		{"lots", 0, false},
		{"%", 0, false},
	}
	for _, tc := range cases {
		got, err := parseThreshold(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("parseThreshold(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
