package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cedar/internal/fault"
	"cedar/internal/fleet"
)

func TestRunRejectsBadInvocations(t *testing.T) {
	t.Cleanup(func() {
		fault.SetDefault(nil)
		fleet.SetJobs(0)
	})
	malformed := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(malformed, []byte(`{"faults": [{"kind": "stage-jam", "rate": 40}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		args    []string
		want    int
		stderrs string
	}{
		{"zero jobs", []string{"-jobs", "0"}, 2, "-jobs"},
		{"negative jobs", []string{"-jobs=-2"}, 2, "-jobs"},
		{"missing plan file", []string{"-faults", filepath.Join(t.TempDir(), "nope.json")}, 2, "nope.json"},
		{"malformed plan", []string{"-faults", malformed}, 2, "rate"},
		{"unknown flag", []string{"-bogus"}, 2, "bogus"},
		{"no matching codes", []string{"-codes", "NOSUCH"}, 2, "NOSUCH"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.want, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.stderrs) {
				t.Fatalf("run(%v) stderr %q does not mention %q", tc.args, stderr.String(), tc.stderrs)
			}
		})
	}
}
