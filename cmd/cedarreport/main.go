// Command cedarreport regenerates the paper's complete evaluation —
// every table, figure, microbenchmark and ablation — as one markdown
// report on stdout. It is the one-command version of running cedarsim,
// perfect and judge back to back (expect several minutes at defaults).
//
// Usage:
//
//	cedarreport > report.md
//	cedarreport -n 512 -full           # closer to paper-scale problems
//	cedarreport -codes ARC2D,QCD,SPICE # fast Perfect subset
//	cedarreport -kernels-only
//	cedarreport -trace t.json -metrics m.csv   # observability artifacts
//	cedarreport -jobs 8                # parallel experiment points, identical report
//	cedarreport -faults plan.json      # every machine runs under the fault plan
package main

import (
	"flag"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"cedar/internal/cliutil"
	"cedar/internal/fleet"
	"cedar/internal/perfect"
	"cedar/internal/scope"
	"cedar/internal/tables"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit code) passed
// in, so tests can drive invalid invocations without forking.
func run(args []string, stdout, stderr io.Writer) int {
	lg := log.New(stderr, "cedarreport: ", 0)
	fs := flag.NewFlagSet("cedarreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n         = fs.Int("n", 256, "rank-64 update order (paper: 1K)")
		full      = fs.Bool("full", false, "use the paper's largest CG sizes")
		codes     = fs.String("codes", "", "comma-separated Perfect subset (default all 13)")
		kernOnly  = fs.Bool("kernels-only", false, "skip the Perfect suite and methodology")
		quiet     = fs.Bool("q", false, "suppress progress lines")
		tracePath = fs.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metrics   = fs.String("metrics", "", "write the metrics snapshot as CSV")
		jobs      = fs.Int("jobs", 0, "parallel experiment jobs (0 = GOMAXPROCS); output is identical at any value")
		shards    = fs.Int("shards", 0, "intra-run parallel engine worker bound (1 = sequential); artifacts are byte-identical at any value")
		faults    = fs.String("faults", "", "JSON fault plan (or \"demo\") injected into every simulated machine")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := cliutil.Setup(fs, cliutil.Flags{Jobs: *jobs, Shards: *shards, Faults: *faults}); err != nil {
		lg.Print(err)
		return 2
	}
	prof, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		lg.Print(err)
		return 2
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			lg.Print(err)
		}
	}()

	var hub *scope.Hub
	if *tracePath != "" || *metrics != "" {
		hub = scope.NewHub()
		fleet.PublishMetrics(hub)
	}

	cfg := tables.ReportConfig{
		RankN:    *n,
		FullPPT4: *full,
		Progress: stderr,
		// The CLI wants the elapsed-time trailer; library callers get
		// byte-identical reports by leaving Now nil.
		Now: time.Now,
		// A hub adds the cycle-attribution section to the report.
		Scope: hub,
	}
	if *quiet {
		cfg.Progress = nil
	}
	if *kernOnly {
		cfg.SkipPerfect = true
		cfg.SkipMethodology = true
	}
	if *codes != "" {
		want := map[string]bool{}
		for _, c := range strings.Split(*codes, ",") {
			want[strings.ToUpper(strings.TrimSpace(c))] = true
		}
		for _, p := range perfect.All() {
			if want[p.Name] {
				cfg.Codes = append(cfg.Codes, p)
			}
		}
		if len(cfg.Codes) == 0 {
			lg.Printf("no codes match %q", *codes)
			return 2
		}
	}
	if err := tables.WriteReport(stdout, cfg); err != nil {
		lg.Print(err)
		return 1
	}
	if err := scope.WriteArtifacts(hub, *tracePath, *metrics); err != nil {
		lg.Print(err)
		return 1
	}
	return 0
}
