// Command cedarreport regenerates the paper's complete evaluation —
// every table, figure, microbenchmark and ablation — as one markdown
// report on stdout. It is the one-command version of running cedarsim,
// perfect and judge back to back (expect several minutes at defaults).
//
// Usage:
//
//	cedarreport > report.md
//	cedarreport -n 512 -full           # closer to paper-scale problems
//	cedarreport -codes ARC2D,QCD,SPICE # fast Perfect subset
//	cedarreport -kernels-only
//	cedarreport -trace t.json -metrics m.csv   # observability artifacts
//	cedarreport -jobs 8                # parallel experiment points, identical report
package main

import (
	"flag"
	"log"
	"os"
	"strings"
	"time"

	"cedar/internal/fleet"
	"cedar/internal/perfect"
	"cedar/internal/scope"
	"cedar/internal/tables"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cedarreport: ")
	var (
		n         = flag.Int("n", 256, "rank-64 update order (paper: 1K)")
		full      = flag.Bool("full", false, "use the paper's largest CG sizes")
		codes     = flag.String("codes", "", "comma-separated Perfect subset (default all 13)")
		kernOnly  = flag.Bool("kernels-only", false, "skip the Perfect suite and methodology")
		quiet     = flag.Bool("q", false, "suppress progress lines")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metrics   = flag.String("metrics", "", "write the metrics snapshot as CSV")
		jobs      = flag.Int("jobs", 0, "parallel experiment jobs (0 = GOMAXPROCS); output is identical at any value")
	)
	flag.Parse()
	fleet.SetJobs(*jobs)

	var hub *scope.Hub
	if *tracePath != "" || *metrics != "" {
		hub = scope.NewHub()
	}

	cfg := tables.ReportConfig{
		RankN:    *n,
		FullPPT4: *full,
		Progress: os.Stderr,
		// The CLI wants the elapsed-time trailer; library callers get
		// byte-identical reports by leaving Now nil.
		Now: time.Now,
		// A hub adds the cycle-attribution section to the report.
		Scope: hub,
	}
	if *quiet {
		cfg.Progress = nil
	}
	if *kernOnly {
		cfg.SkipPerfect = true
		cfg.SkipMethodology = true
	}
	if *codes != "" {
		want := map[string]bool{}
		for _, c := range strings.Split(*codes, ",") {
			want[strings.ToUpper(strings.TrimSpace(c))] = true
		}
		for _, p := range perfect.All() {
			if want[p.Name] {
				cfg.Codes = append(cfg.Codes, p)
			}
		}
		if len(cfg.Codes) == 0 {
			log.Fatalf("no codes match %q", *codes)
		}
	}
	if err := tables.WriteReport(os.Stdout, cfg); err != nil {
		log.Fatal(err)
	}
	if err := scope.WriteArtifacts(hub, *tracePath, *metrics); err != nil {
		log.Fatal(err)
	}
}
