// Package a exists to give cedarvet a deterministic nonzero finding
// set: it is not in the cedar layer DAG, so the layering check reports
// it.
package a

// V keeps the package non-empty.
const V = 1
