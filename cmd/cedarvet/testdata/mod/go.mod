module vetdemo

go 1.22
