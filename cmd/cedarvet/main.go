// Command cedarvet runs the project's custom static-analysis suite — the
// determinism, parameter-hygiene, hot-path-allocation, layering, and
// error-flow invariants the simulator depends on — over the module. It is
// the multichecker for the analyzers under internal/lint; see DESIGN.md
// "Determinism invariants and cedarvet" and "cedarvet v2: whole-module
// analyses".
//
// Usage:
//
//	cedarvet [-checks list] [-json] [package patterns]
//
// Patterns default to ./... . Examples:
//
//	cedarvet ./...
//	cedarvet -checks nondeterminism,maporder ./internal/...
//	cedarvet -json ./... > cedarvet.json
//
// Findings print as file:line:col: check: message (paths relative to the
// module root) and make the exit status 1; a clean run exits 0 and tool
// failures — including an unknown name in -checks — exit 2. With -json
// the findings print as a JSON array instead, byte-deterministic across
// runs, for CI artifact diffing. Individual findings can be waived in the
// source with a justified directive:
//
//	//lint:allow <check> <reason>
//
// A directive that no longer suppresses anything is itself reported
// (check "lintstale") on full runs, so waivers cannot outlive their
// findings.
//
// Scope: maporder, paramhygiene, cycleint, and the whole-module
// hotalloc, layering, and shardsafe checks run everywhere;
// nondeterminism, concsafe, and
// errflow cover the root package and internal/** (the simulator proper) —
// commands and examples may legitimately read the wall clock, exit the
// process, and print unchecked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cedar/internal/lint"
	"cedar/internal/lint/concsafe"
	"cedar/internal/lint/cycleint"
	"cedar/internal/lint/errflow"
	"cedar/internal/lint/hotalloc"
	"cedar/internal/lint/layering"
	"cedar/internal/lint/maporder"
	"cedar/internal/lint/nondeterminism"
	"cedar/internal/lint/paramhygiene"
	"cedar/internal/lint/shardsafe"
)

// simulatorOnly restricts a check to the model itself.
func simulatorOnly(pkgPath string) bool {
	return pkgPath == "cedar" || strings.HasPrefix(pkgPath, "cedar/internal/")
}

// suite is the full cedarvet v2 analyzer set with each check's scope.
var suite = &lint.Suite{
	Package: []lint.ScopedAnalyzer{
		{Analyzer: nondeterminism.Analyzer, Applies: simulatorOnly},
		{Analyzer: maporder.Analyzer},
		{Analyzer: paramhygiene.Analyzer},
		{Analyzer: cycleint.Analyzer},
		{Analyzer: concsafe.Analyzer, Applies: simulatorOnly},
		{Analyzer: errflow.Analyzer, Applies: simulatorOnly},
	},
	Module: []*lint.ModuleAnalyzer{
		hotalloc.Analyzer,
		layering.Analyzer,
		shardsafe.Analyzer,
	},
}

// docOf returns the one-line doc for usage output.
func docOf(name string) string {
	for _, s := range suite.Package {
		if s.Analyzer.Name == name {
			return s.Analyzer.Doc
		}
	}
	for _, m := range suite.Module {
		if m.Name == name {
			return m.Doc
		}
	}
	return ""
}

// jsonDiagnostic is the -json wire form of one finding. File paths are
// module-root-relative with forward slashes, so the output is identical
// regardless of checkout location or invocation directory.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, for tests. Exit codes: 0 clean,
// 1 findings, 2 tool failure (bad flags, unknown checks, load errors).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cedarvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated subset of checks (default: all)")
	jsonOut := fs.Bool("json", false, "print findings as a deterministic JSON array")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cedarvet [-checks list] [-json] [package patterns]\n\nchecks:\n")
		for _, name := range suite.Names() {
			fmt.Fprintf(stderr, "  %-16s %s\n", name, docOf(name))
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var enabled func(name string) bool
	if *checks != "" {
		set := map[string]bool{}
		for _, c := range strings.Split(*checks, ",") {
			c = strings.TrimSpace(c)
			if !suite.Has(c) {
				fmt.Fprintf(stderr, "cedarvet: unknown check %q (valid: %s)\n", c, strings.Join(suite.Names(), ", "))
				return 2
			}
			set[c] = true
		}
		enabled = func(name string) bool { return set[name] }
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "cedarvet: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "cedarvet: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "cedarvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "cedarvet: %v\n", err)
		return 2
	}

	diags, err := suite.Run(pkgs, enabled)
	if err != nil {
		fmt.Fprintf(stderr, "cedarvet: %v\n", err)
		return 2
	}

	// Module-root-relative forward-slash paths: deterministic output no
	// matter where the checkout lives or where cedarvet was invoked.
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonDiagnostic{File: file, Line: d.Pos.Line, Col: d.Pos.Column, Check: d.Check, Message: d.Message})
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "cedarvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range out {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Check, d.Message)
		}
	}
	if len(out) > 0 {
		fmt.Fprintf(stderr, "cedarvet: %d finding(s)\n", len(out))
		return 1
	}
	return 0
}
