// Command cedarvet runs the project's custom static-analysis suite — the
// determinism and parameter-hygiene invariants the simulator depends on —
// over the module. It is the multichecker for the analyzers under
// internal/lint; see DESIGN.md "Determinism invariants and cedarvet".
//
// Usage:
//
//	cedarvet [-checks list] [package patterns]
//
// Patterns default to ./... . Examples:
//
//	cedarvet ./...
//	cedarvet -checks nondeterminism,maporder ./internal/...
//
// Findings print as file:line:col: check: message and make the exit
// status 1; a clean run exits 0 and tool failures exit 2. Individual
// findings can be waived in the source with a justified directive:
//
//	//lint:allow <check> <reason>
//
// Scope: maporder, paramhygiene and cycleint run everywhere; the
// nondeterminism check covers the root package and internal/** (the
// simulator proper) — commands and examples may legitimately read the
// wall clock for CLI output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cedar/internal/lint"
	"cedar/internal/lint/cycleint"
	"cedar/internal/lint/maporder"
	"cedar/internal/lint/nondeterminism"
	"cedar/internal/lint/paramhygiene"
)

// simulatorOnly restricts a check to the model itself.
func simulatorOnly(pkgPath string) bool {
	return pkgPath == "cedar" || strings.HasPrefix(pkgPath, "cedar/internal/")
}

func everywhere(string) bool { return true }

// suite is the full analyzer set with each check's package scope.
var suite = []struct {
	analyzer *lint.Analyzer
	applies  func(pkgPath string) bool
}{
	{nondeterminism.Analyzer, simulatorOnly},
	{maporder.Analyzer, everywhere},
	{paramhygiene.Analyzer, everywhere},
	{cycleint.Analyzer, everywhere},
}

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cedarvet [-checks list] [package patterns]\n\nchecks:\n")
		for _, s := range suite {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", s.analyzer.Name, s.analyzer.Doc)
		}
	}
	flag.Parse()

	enabled := map[string]bool{}
	if *checks != "" {
		for _, c := range strings.Split(*checks, ",") {
			enabled[strings.TrimSpace(c)] = true
		}
		for c := range enabled {
			known := false
			for _, s := range suite {
				known = known || s.analyzer.Name == c
			}
			if !known {
				fail("unknown check %q", c)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fail("%v", err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fail("%v", err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fail("%v", err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fail("%v", err)
	}

	findings := 0
	for _, pkg := range pkgs {
		var analyzers []*lint.Analyzer
		for _, s := range suite {
			if (len(enabled) == 0 || enabled[s.analyzer.Name]) && s.applies(pkg.Path) {
				analyzers = append(analyzers, s.analyzer)
			}
		}
		diags, err := lint.CheckPackage(pkg, analyzers...)
		if err != nil {
			fail("%v", err)
		}
		for _, d := range diags {
			pos := d.Pos
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Check, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "cedarvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cedarvet: "+format+"\n", args...)
	os.Exit(2)
}
