package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestUnknownCheckExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "nosuch", "./..."}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown check "nosuch"`) || !strings.Contains(msg, "hotalloc") {
		t.Fatalf("stderr %q should name the bad check and list the valid ones", msg)
	}
}

// chdir switches into dir for the duration of the test; run() anchors on
// the module root above the working directory.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// TestJSONDeterministic vets the vetdemo golden module twice: the runs
// must agree byte for byte, and the one planted finding (an unassigned
// package in the layer DAG) must survive with a module-root-relative
// path.
func TestJSONDeterministic(t *testing.T) {
	chdir(t, "testdata/mod")
	runOnce := func() (int, string) {
		var out, errb bytes.Buffer
		code := run([]string{"-json", "./..."}, &out, &errb)
		return code, out.String()
	}
	c1, o1 := runOnce()
	c2, o2 := runOnce()
	if c1 != 1 || c2 != 1 {
		t.Fatalf("exit = %d/%d, want 1 (the planted finding)", c1, c2)
	}
	if o1 != o2 {
		t.Fatalf("json output differs between runs:\n%s---\n%s", o1, o2)
	}
	var arr []jsonDiagnostic
	if err := json.Unmarshal([]byte(o1), &arr); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, o1)
	}
	if len(arr) != 1 || arr[0].Check != "layering" || arr[0].File != "a/a.go" {
		t.Fatalf("findings = %+v, want one layering finding at a/a.go", arr)
	}
}
