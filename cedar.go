// Package cedar is a simulation-backed reproduction of the Cedar
// multiprocessor described in "The Cedar System and an Initial
// Performance Study" (Kuck et al., ISCA 1993).
//
// Cedar was a cluster-based shared-memory multiprocessor: four modified
// Alliant FX/8 clusters (eight computational elements each, with a shared
// four-way interleaved cache and a concurrency control bus) connected by
// two unidirectional multistage shuffle-exchange networks to a globally
// shared memory whose modules carry synchronization processors, with a
// per-CE data prefetch unit masking the global latency.
//
// This package is the public face of the library. It exposes:
//
//   - the machine model (NewMachine, Params, Options) — a deterministic
//     cycle-level simulator of the whole system;
//   - the CEDAR FORTRAN runtime abstractions (NewRuntime with XDoall,
//     SDoall, CDoall and Serial phases) for writing workloads;
//   - the paper's kernels (RankUpdate, VectorLoad, TriMat, CG);
//   - the Perfect Benchmarks® proxy suite (PerfectCodes, RunPerfect);
//   - the Practical Parallelism Test methodology (Speedup, Efficiency,
//     Instability, band classification);
//   - and the experiment harness that regenerates every table and figure
//     of the paper's evaluation (RunTable1 ... RunPPT4).
//
// A minimal program:
//
//	m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
//	res, err := cedar.RankUpdate(m, 256, cedar.RKPref)
//	fmt.Printf("%.1f MFLOPS\n", res.MFLOPS)
package cedar

import (
	"cedar/internal/bench"
	"cedar/internal/ce"
	"cedar/internal/cfrt"
	"cedar/internal/core"
	"cedar/internal/fault"
	"cedar/internal/fleet"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/perfect"
	"cedar/internal/ppt"
	"cedar/internal/scope"
	"cedar/internal/sim"
	"cedar/internal/tables"
	"cedar/internal/xylem"
)

// SetSteppedEngine sets the process-wide engine mode for machines built
// afterwards: true pins every engine to the pure per-cycle stepped
// schedule, false (the default) enables the event wheel that jumps over
// cycles where no component is due. The two schedules are required to
// produce byte-identical artifacts — the stepped-vs-event equivalence
// test runs the experiment suite both ways and compares — so this switch
// exists for that gate and for debugging, not for tuning.
var SetSteppedEngine = sim.SetSteppedMode

// SteppedEngine reports the current process-wide engine mode.
var SteppedEngine = sim.SteppedModeEnabled

// SetShards sets the process-wide intra-run parallelism for machines
// built afterwards: with n > 1 (and more than one cluster) each cluster
// becomes an engine shard and every cycle ticks the shards concurrently
// on up to n workers before the serial hub pass. The schedule is
// required to be invisible — -shards 1 and -shards N artifacts are
// byte-compared by the shards equivalence gate — so n tunes wall time
// only. Values below 1 mean 1 (the sequential schedule).
var SetShards = sim.SetShards

// Shards reports the process-wide intra-run parallelism bound.
var Shards = sim.Shards

// Machine is a configured Cedar system: clusters of CEs, networks, global
// memory, and allocators for placing workload data.
type Machine = core.Machine

// Params is the machine parameter set; DefaultParams returns Cedar as
// built (4 clusters × 8 CEs at 170 ns).
type Params = params.Machine

// Options selects construction variants (network type, queue depth).
type Options = core.Options

// Fabric kinds for Options.
const (
	FabricOmega    = core.FabricOmega
	FabricCrossbar = core.FabricCrossbar
)

// CycleNS is the CE instruction cycle time in nanoseconds (170 ns).
const CycleNS = params.CycleNS

// DefaultParams returns the Cedar machine as built.
func DefaultParams() Params { return params.Default() }

// ScaledParams returns a Cedar-like machine scaled to the given cluster
// count (the PPT5 probe).
func ScaledParams(clusters int) Params { return params.Scaled(clusters) }

// NewMachine builds a machine, panicking on invalid parameters; use
// core-level construction via NewMachineErr to handle errors.
func NewMachine(p Params, opt Options) *Machine { return core.MustNew(p, opt) }

// NewMachineErr builds a machine, returning configuration errors.
func NewMachineErr(p Params, opt Options) (*Machine, error) { return core.New(p, opt) }

// Result is an aggregate timing result.
type Result = core.Result

// Instruction-level workload types (for writing custom programs).
type (
	// Instr is one CE instruction.
	Instr = ce.Instr
	// Stream is a vector memory operand.
	Stream = ce.Stream
)

// Instruction opcodes and spaces.
const (
	OpScalar      = ce.OpScalar
	OpVector      = ce.OpVector
	OpGlobalLoad  = ce.OpGlobalLoad
	OpGlobalStore = ce.OpGlobalStore
	OpSync        = ce.OpSync
	OpFence       = ce.OpFence

	SpaceNone    = ce.SpaceNone
	SpaceGlobal  = ce.SpaceGlobal
	SpaceCluster = ce.SpaceCluster
)

// Runtime types: the CEDAR FORTRAN loop-scheduling layer.
type (
	// Runtime executes a phase program on a machine.
	Runtime = cfrt.Runtime
	// RuntimeConfig selects library options (Cedar sync, cluster count).
	RuntimeConfig = cfrt.Config
	// Phase is one machine-wide step.
	Phase = cfrt.Phase
	// Serial runs on CE 0.
	Serial = cfrt.Serial
	// XDoall spreads iterations across the whole machine.
	XDoall = cfrt.XDoall
	// SDoall schedules iterations on whole clusters.
	SDoall = cfrt.SDoall
	// CDoall spreads iterations across one cluster via the concurrency
	// control bus.
	CDoall = cfrt.CDoall
	// ClusterSerial runs on a cluster's master CE.
	ClusterSerial = cfrt.ClusterSerial
)

// NewRuntime builds a runtime over a machine for the given phases.
func NewRuntime(m *Machine, cfg RuntimeConfig, phases ...Phase) *Runtime {
	return cfrt.New(m, cfg, phases...)
}

// Kernels of the §4.1 memory study.
type (
	// KernelResult is a kernel run plus the monitored prefetch traffic.
	KernelResult = kernels.Result
	// RKMode selects the rank-update memory variant.
	RKMode = kernels.RKMode
	// CGConfig configures the conjugate gradient kernel.
	CGConfig = kernels.CGConfig
	// BandedConfig configures the banded matrix-vector kernel.
	BandedConfig = kernels.BandedConfig
	// MemBWPoint is one memory-characterization measurement.
	MemBWPoint = kernels.MemBWPoint
)

// Rank-update variants (Table 1).
const (
	RKNoPref = kernels.RKNoPref
	RKPref   = kernels.RKPref
	RKCache  = kernels.RKCache
)

// RankUpdate computes a rank-64 update to an n×n matrix (Table 1).
func RankUpdate(m *Machine, n int, mode RKMode) (KernelResult, error) {
	return kernels.RankUpdate(m, n, mode)
}

// VectorLoad streams words from global memory (the VL kernel of Table 2).
func VectorLoad(m *Machine, n, sweeps int) (KernelResult, error) {
	return kernels.VectorLoad(m, n, sweeps)
}

// TriMat computes a tridiagonal matrix-vector product (TM).
func TriMat(m *Machine, n int) (KernelResult, error) { return kernels.TriMat(m, n) }

// CG runs the 5-diagonal conjugate gradient solver of the PPT4 study.
func CG(m *Machine, cfg CGConfig) (KernelResult, error) { return kernels.CG(m, cfg) }

// Banded computes the banded matrix-vector product of the PPT4 CM-5
// comparison on the simulated Cedar.
func Banded(m *Machine, cfg BandedConfig) (KernelResult, error) { return kernels.Banded(m, cfg) }

// MemBW measures delivered global-memory bandwidth for a CE count and
// stride — the [GJTV91] characterization.
func MemBW(m *Machine, nCE int, stride int64, wordsPerCE int) (MemBWPoint, error) {
	return kernels.MemBW(m, nCE, stride, wordsPerCE)
}

// Perfect Benchmark proxies.
type (
	// PerfectProfile describes one Perfect code.
	PerfectProfile = perfect.Profile
	// PerfectSpec selects a variant and the Table 3 ablations.
	PerfectSpec = perfect.Spec
	// PerfectOutcome is one measured, full-scale-scaled run.
	PerfectOutcome = perfect.Outcome
)

// Perfect variants.
const (
	PerfectSerial = perfect.Serial
	PerfectKAP    = perfect.KAP
	PerfectAuto   = perfect.Auto
	PerfectHand   = perfect.Hand
)

// PerfectCodes returns the thirteen-code suite.
func PerfectCodes() []PerfectProfile { return perfect.All() }

// RunPerfect executes one Perfect code variant on a fresh machine. An
// optional Hub observes the run.
func RunPerfect(p Params, code PerfectProfile, spec PerfectSpec, obs ...*Hub) (PerfectOutcome, error) {
	return perfect.Run(p, code, spec, obs...)
}

// Methodology: the Practical Parallelism Tests of §4.3.
type Band = ppt.Band

// Performance bands.
const (
	BandHigh         = ppt.High
	BandIntermediate = ppt.Intermediate
	BandUnacceptable = ppt.Unacceptable
)

// Speedup is serial time over parallel time.
func Speedup(serial, parallel float64) float64 { return ppt.Speedup(serial, parallel) }

// Efficiency is speedup per processor.
func Efficiency(speedup float64, p int) float64 { return ppt.Efficiency(speedup, p) }

// BandOf classifies a speedup on P processors against the P/2 and
// P/(2·log₂P) thresholds.
func BandOf(speedup float64, p int) Band { return ppt.BandOfSpeedup(speedup, p) }

// Instability computes In(K, e): max/min performance after excluding the
// e most extreme outliers.
func Instability(perf []float64, e int) float64 { return ppt.Instability(perf, e) }

// Experiment harness: every table and figure of the evaluation.
type (
	// Table1Result is the rank-64 update memory study.
	Table1Result = tables.Table1Result
	// Table2Result is the latency/interarrival study.
	Table2Result = tables.Table2Result
	// SuiteResult holds all Perfect variant outcomes.
	SuiteResult = tables.SuiteResult
	// PPT4Result is the scalability study.
	PPT4Result = tables.PPT4Result
)

// RunTable1 regenerates Table 1 for matrices of order n. An optional Hub
// observes every machine in the sweep.
func RunTable1(n int, obs ...*Hub) (*Table1Result, error) { return tables.RunTable1(n, obs...) }

// RunTable2 regenerates Table 2.
func RunTable2(obs ...*Hub) (*Table2Result, error) { return tables.RunTable2(obs...) }

// RunPerfectSuite runs every variant of the suite (pass nil for all 13
// codes); feed the result to BuildTable3..BuildFigure3.
var RunPerfectSuite = tables.RunSuite

// Derived tables over a suite run.
var (
	BuildTable3  = tables.BuildTable3
	BuildTable4  = tables.BuildTable4
	BuildTable5  = tables.BuildTable5
	BuildTable6  = tables.BuildTable6
	BuildFigure3 = tables.BuildFigure3
)

// RunPPT4 regenerates the CG-vs-CM-5 scalability study.
func RunPPT4(full bool, obs ...*Hub) (*PPT4Result, error) { return tables.RunPPT4(full, obs...) }

// ReportConfig selects what WriteReport includes and at what scale.
type ReportConfig = tables.ReportConfig

// WriteReport regenerates the paper's complete evaluation as one report.
// With ReportConfig.Now left nil the output is byte-identical across
// runs (see the determinism invariants in DESIGN.md).
var WriteReport = tables.WriteReport

// Multiprogramming: the Xylem OS behaviour the paper's single-user runs
// avoided.
type TimeSharer = xylem.TimeSharer

// NewTimeSharer gang-schedules several programs onto one machine with the
// given quantum (cycles), paying Xylem's cluster-task switch cost.
func NewTimeSharer(p Params, quantum int64, tasks ...Controller) *TimeSharer {
	return xylem.NewTimeSharer(p, xylem.DefaultTasks(), quantum, tasks...)
}

// Controller feeds instructions to CEs; Runtime and TimeSharer implement it.
type Controller = ce.Controller

// FixedWork builds a uniform scalar workload for every CE — a background
// task for multiprogramming studies.
func FixedWork(instrs int, cycles int64) Controller {
	return xylem.NewFixedWork(instrs, cycles)
}

// Observability: the cedarscope hub (see internal/scope). Build a machine
// with Options{Scope: NewHub()} — or pass a Hub to any experiment runner —
// then export the run via WriteChromeTrace / WriteMetricsCSV or inspect
// Snapshot / Attribution programmatically.
type (
	// Hub is the whole-machine observability nexus: a metrics registry, a
	// cycle-stamped span tracer, and a cycle-attribution report. A nil
	// *Hub disables instrumentation at near-zero cost.
	Hub = scope.Hub
	// MetricSample is one named metric reading.
	MetricSample = scope.Sample
	// TraceSpan is one captured trace record.
	TraceSpan = scope.Span
	// AttributionRow is one component class's busy/stall/idle totals.
	AttributionRow = scope.AttrRow
)

// NewHub builds an empty observability hub.
func NewHub() *Hub { return scope.NewHub() }

// WriteScopeArtifacts writes a hub's Chrome trace JSON and metrics CSV to
// the given paths (empty path = skip) — what the CLIs' -trace/-metrics
// flags do.
var WriteScopeArtifacts = scope.WriteArtifacts

// FormatAttribution renders the per-class cycle attribution table.
var FormatAttribution = scope.FormatAttribution

// Parallel orchestration: the cedarfleet pool (see internal/fleet). Each
// simulated machine remains single-goroutine — the pool dispatches whole
// independent experiment points and reassembles results in submission
// order, so every report, JSON, and trace artifact is byte-identical to a
// sequential run.

// SetJobs sets the process-wide worker count used by the experiment
// runners (RunTable1 ... RunPPT4, RunPerfectSuite, WriteReport). n ≤ 0
// restores the default, GOMAXPROCS. The CLIs wire their -jobs flag here.
var SetJobs = fleet.SetJobs

// Jobs reports the effective worker count.
var Jobs = fleet.Jobs

// ResetRunCache drops the process-wide memoized run results. Repeated
// identical configurations normally simulate once per process; reset when
// benchmarking raw simulation speed.
var ResetRunCache = fleet.ResetCache

// RunOverheads measures the §3.2 runtime library costs.
var RunOverheads = tables.RunOverheads

// RunMemBW runs the [GJTV91] memory characterization sweep.
var RunMemBW = tables.RunMemBW

// RunSchedulingAblation compares static, self- and guided loop
// scheduling with and without Cedar synchronization.
var RunSchedulingAblation = tables.RunSchedulingAblation

// Fault injection: the cedarfault layer (see internal/fault). A Plan is
// seed-deterministic data; build a machine with Options{Faults: plan}
// (or install a process default via SetDefaultFaults, what the CLIs'
// -faults flag does) and the machine degrades instead of crashing:
// dead banks remap the interleave, NACKed or lost prefetch reads retry
// with exponential backoff, and exhausted retries surface as an
// ErrDegraded result.
type (
	// FaultPlan is a seed plus a list of fault descriptions.
	FaultPlan = fault.Plan
	// Fault is one injected defect.
	Fault = fault.Fault
	// FaultKind names a fault mechanism.
	FaultKind = fault.Kind
	// DegradedRow is one scenario of the degraded-mode table.
	DegradedRow = tables.DegradedRow
)

// Fault kinds.
const (
	FaultBankDead  = fault.BankDead
	FaultBankStall = fault.BankStall
	FaultStageJam  = fault.StageJam
	FaultLinkDrop  = fault.LinkDrop
	FaultPFUNack   = fault.PFUNack
)

// ErrDegraded marks a run that completed (or was abandoned) in degraded
// mode; check with errors.Is.
var ErrDegraded = fault.ErrDegraded

// LoadFaultPlan reads and validates a JSON fault plan file.
var LoadFaultPlan = fault.Load

// SetDefaultFaults installs (nil clears) the process-wide fault plan
// used by machines built without an explicit Options.Faults.
var SetDefaultFaults = fault.SetDefault

// DemoFaultPlan is the built-in dead-bank + stage-jam + NACK scenario.
var DemoFaultPlan = fault.DemoPlan

// RunDegraded measures the degraded-mode ablation: the prefetched
// rank-n update under each fault class, plus the given plan when
// non-nil.
var RunDegraded = tables.RunDegraded

// FormatDegraded renders the degraded-mode table.
var FormatDegraded = tables.FormatDegraded

// Benchmarking: the cedarbench campaign runner (see internal/bench). A
// BenchCampaign declares a matrix of (machine × workload × fault plan);
// RunBenchCampaign executes every point through the fleet pool and
// returns a BenchArtifact whose deterministic section (simcycles, scope
// counters, attribution, cache rates) is byte-identical at any worker
// count, with wall time and allocations kept in a separate measured
// section. cmd/cedarbench is the CLI face; scripts/check.sh runs the
// smoke campaign and diffs against the committed baseline on every PR.
type (
	// BenchCampaign is one declarative benchmark matrix.
	BenchCampaign = bench.Campaign
	// BenchMachineSpec is one machine axis entry (default Cedar plus
	// named overrides).
	BenchMachineSpec = bench.MachineSpec
	// BenchWorkloadSpec is one workload axis entry (a paper kernel plus
	// sizing).
	BenchWorkloadSpec = bench.WorkloadSpec
	// BenchFaultSpec is one fault axis entry (healthy, demo, file or
	// inline plan).
	BenchFaultSpec = bench.FaultSpec
	// BenchArtifact is a campaign execution (a BENCH_<area>.json file).
	BenchArtifact = bench.Artifact
	// BenchRunOptions tunes a campaign execution (jobs override, wall
	// clock, progress writer).
	BenchRunOptions = bench.RunOptions
	// BenchDiffOptions sets the regression thresholds for a diff.
	BenchDiffOptions = bench.DiffOptions
	// BenchDiffReport is the outcome of comparing two artifacts.
	BenchDiffReport = bench.DiffReport
)

// LoadBenchCampaign reads and validates a campaign config file.
var LoadBenchCampaign = bench.Load

// SmokeBenchCampaign returns the built-in smoke campaign check.sh runs.
var SmokeBenchCampaign = bench.Smoke

// RunBenchCampaign executes a campaign and returns its artifact.
var RunBenchCampaign = bench.Run

// ReadBenchArtifact loads a BENCH_<area>.json artifact file.
var ReadBenchArtifact = bench.ReadArtifact

// DiffBenchArtifacts compares a new artifact against an old baseline,
// flagging simcycle and allocation regressions past the thresholds.
var DiffBenchArtifacts = bench.Diff
