package cedar_test

import (
	"fmt"

	"cedar"
)

// ExampleNewRuntime runs a self-scheduled DOALL and reports the exact
// work it completed (the simulator is deterministic).
func ExampleNewRuntime() {
	m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
	rt := cedar.NewRuntime(m, cedar.RuntimeConfig{UseCedarSync: true},
		cedar.XDoall{N: 100, Body: func(i int) []*cedar.Instr {
			return []*cedar.Instr{{Op: cedar.OpScalar, Cycles: 25, Flops: 4}}
		}})
	res, err := rt.Run(10_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("flops:", res.Flops)
	// Output:
	// flops: 400
}

// ExampleBandOf classifies speedups the way §4.3 does.
func ExampleBandOf() {
	fmt.Println(cedar.BandOf(20, 32)) // ≥ P/2
	fmt.Println(cedar.BandOf(5, 32))  // ≥ P/(2·log₂P)
	fmt.Println(cedar.BandOf(2, 32))
	// Output:
	// High
	// Intermediate
	// Unacceptable
}

// ExampleInstability computes the Table 5 measure.
func ExampleInstability() {
	rates := []float64{0.6, 3.5, 4.7, 8.8, 33}
	fmt.Printf("In(5,0) = %.1f\n", cedar.Instability(rates, 0))
	fmt.Printf("In(5,2) = %.1f\n", cedar.Instability(rates, 2))
	// Output:
	// In(5,0) = 55.0
	// In(5,2) = 2.5
}

// ExampleRankUpdate runs the paper's central kernel on one cluster.
func ExampleRankUpdate() {
	p := cedar.DefaultParams()
	p.Clusters = 1
	m := cedar.NewMachine(p, cedar.Options{})
	res, err := cedar.RankUpdate(m, 64, cedar.RKNoPref)
	if err != nil {
		panic(err)
	}
	fmt.Println("flops:", res.Flops) // 2·64·n²
	// Output:
	// flops: 524288
}

// ExampleEfficiency mirrors the Table 6 computation.
func ExampleEfficiency() {
	speedup := cedar.Speedup(1500.0, 100.0)
	fmt.Printf("Ep = %.2f\n", cedar.Efficiency(speedup, 32))
	// Output:
	// Ep = 0.47
}
